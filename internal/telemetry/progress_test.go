package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hvc/internal/sketch"
)

func TestProgressSketches(t *testing.T) {
	g := sketch.NewGroup()
	for i := 1; i <= 100; i++ {
		g.Observe("latency_ms", float64(i))
	}
	g.Observe("zzz_single", 7)
	got := ProgressSketches(g.Snapshot())
	if len(got) != 2 {
		t.Fatalf("got %d sketches, want 2: %+v", len(got), got)
	}
	lat := got[0]
	if lat.Name != "latency_ms" || lat.N != 100 {
		t.Fatalf("first sketch = %+v", lat)
	}
	if rel := (lat.P50 - 50) / 50; rel > sketch.DefaultAlpha || rel < -sketch.DefaultAlpha {
		t.Fatalf("p50 = %v, want within %v of 50", lat.P50, sketch.DefaultAlpha)
	}
	if got[1].Name != "zzz_single" || got[1].P99 != 7 {
		t.Fatalf("second sketch = %+v", got[1])
	}

	// Summaries with no observations are dropped, and nil input maps to
	// nil output (the omitempty shape).
	if out := ProgressSketches([]sketch.Summary{{Name: "empty"}}); out != nil {
		t.Fatalf("empty summary survived: %+v", out)
	}
	if out := ProgressSketches(nil); out != nil {
		t.Fatalf("nil snapshot produced %+v", out)
	}
}

// syncWriter serializes writes: the emitter goroutine and the test's
// reads would otherwise race on the buffer.
type syncWriter struct {
	mu  chan struct{}
	buf bytes.Buffer
}

func newSyncWriter() *syncWriter {
	w := &syncWriter{mu: make(chan struct{}, 1)}
	w.mu <- struct{}{}
	return w
}

func (w *syncWriter) Write(p []byte) (int, error) {
	<-w.mu
	defer func() { w.mu <- struct{}{} }()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	<-w.mu
	defer func() { w.mu <- struct{}{} }()
	return w.buf.String()
}

func TestStartProgressEmitsSnapshotLines(t *testing.T) {
	w := newSyncWriter()
	done := 0
	stop := StartProgress(w, 2*time.Millisecond, func() Progress {
		done++
		return Progress{Done: done, Total: 40, Cached: 3, Violations: 1,
			Sketches: []ProgressSketch{{Name: "plt_ms", N: 10, P50: 100, P95: 200, P99: 250}}}
	})
	time.Sleep(20 * time.Millisecond)
	stop()
	stop() // idempotent

	lines := strings.Split(strings.TrimSuffix(w.String(), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("want ticker lines plus a final line, got %d:\n%s", len(lines), w.String())
	}
	for _, line := range lines {
		var p Progress
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if p.Schema != ProgressSchema {
			t.Fatalf("schema = %q, want %q", p.Schema, ProgressSchema)
		}
		if p.Total != 40 || p.Cached != 3 || p.Violations != 1 {
			t.Fatalf("snapshot = %+v", p)
		}
		if len(p.Sketches) != 1 || p.Sketches[0].Name != "plt_ms" || p.Sketches[0].P95 != 200 {
			t.Fatalf("sketches = %+v", p.Sketches)
		}
	}
	// The final (stop-time) line samples one more time than the ticks.
	var last Progress
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Done != len(lines) {
		t.Fatalf("final snapshot done = %d, want one sample per line (%d)", last.Done, len(lines))
	}
}

func TestStartProgressDerivesEta(t *testing.T) {
	// A mid-run snapshot with a sampler-provided rate gets a derived
	// ETA: remaining units over the rate. A finished run gets none —
	// eta_s would be a lie once done == total.
	w := newSyncWriter()
	stop := StartProgress(w, time.Hour, func() Progress {
		return Progress{Done: 30, Total: 40, RatePerS: 5}
	})
	stop()
	var p Progress
	if err := json.Unmarshal([]byte(strings.TrimSuffix(w.String(), "\n")), &p); err != nil {
		t.Fatalf("final line %q: %v", w.String(), err)
	}
	if p.EtaS != 2 {
		t.Fatalf("eta_s = %v, want 2 (10 remaining at 5/s)", p.EtaS)
	}

	w = newSyncWriter()
	stop = StartProgress(w, time.Hour, func() Progress {
		return Progress{Done: 40, Total: 40, RatePerS: 5}
	})
	stop()
	if strings.Contains(w.String(), "eta_s") {
		t.Fatalf("finished run emitted an eta: %s", w.String())
	}
}

func TestStartProgressFinalLineWithoutTicks(t *testing.T) {
	// Short runs never reach the first tick; stop must still emit one
	// snapshot so the surface is never silent.
	w := newSyncWriter()
	stop := StartProgress(w, time.Hour, func() Progress {
		return Progress{Done: 40, Total: 40}
	})
	stop()
	var p Progress
	if err := json.Unmarshal([]byte(strings.TrimSuffix(w.String(), "\n")), &p); err != nil {
		t.Fatalf("final line %q: %v", w.String(), err)
	}
	if p.Done != 40 || p.Total != 40 || p.Schema != ProgressSchema {
		t.Fatalf("final snapshot = %+v", p)
	}
}

func TestReportSketches(t *testing.T) {
	r := NewReport("fig2", 1)
	r.AddMetric("fig2/duplication/latency_p50", 30, "ms")

	s := sketch.NewDefault()
	for i := 1; i <= 1000; i++ {
		s.Observe(float64(i))
	}
	r.AddSketch("fig2/duplication/latency_ms", s)
	r.AddSketch("skipped-empty", sketch.NewDefault())
	r.AddSketch("skipped-nil", nil)

	if len(r.Sketches) != 1 {
		t.Fatalf("sketches = %+v, want exactly the non-empty one", r.Sketches)
	}
	sk := r.Sketches[0]
	if sk.Name != "fig2/duplication/latency_ms" || sk.N != 1000 || sk.Min != 1 || sk.Max != 1000 {
		t.Fatalf("sketch summary = %+v", sk)
	}
	if rel := (sk.P95 - 950) / 950; rel > sketch.DefaultAlpha || rel < -sketch.DefaultAlpha {
		t.Fatalf("p95 = %v, want within %v of 950", sk.P95, sketch.DefaultAlpha)
	}

	// Round trip: parse normalizes, re-encode is byte-stable.
	var b1 bytes.Buffer
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b1.String(), `"sketches"`) {
		t.Fatalf("serialized report missing sketches:\n%s", b1.String())
	}
	r2, err := ParseReport(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	if err := r2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("round trip unstable:\n%s\n----\n%s", b1.Bytes(), b2.Bytes())
	}

	// A report without sketches serializes exactly as before the field
	// existed: additive means omitted, not null or [].
	plain := NewReport("fig1a", 2)
	plain.AddMetric("m", 1, "")
	var pb bytes.Buffer
	if err := plain.WriteJSON(&pb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(pb.String(), "sketches") {
		t.Fatalf("sketch-free report mentions sketches:\n%s", pb.String())
	}
}
