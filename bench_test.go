// Package hvc_test is the benchmark harness: one benchmark per table
// and figure in the paper's evaluation, each regenerating its result
// at paper scale through internal/core and reporting the headline
// metric via b.ReportMetric. See DESIGN.md §3 for the experiment index
// and EXPERIMENTS.md for paper-vs-measured numbers.
//
// Run with:
//
//	go test -bench=. -benchmem
package hvc_test

import (
	"fmt"
	"testing"
	"time"

	"hvc/internal/core"
	"hvc/internal/sweep"
)

const (
	benchSeed = 1
	bulkDur   = 60 * time.Second
	videoDur  = 60 * time.Second
)

// BenchmarkFig1a regenerates Figure 1a: throughput per CCA under
// DChannel steering over eMBB(50ms/60Mbps)+URLLC(5ms/2Mbps).
func BenchmarkFig1a(b *testing.B) {
	for _, cca := range []string{"cubic", "bbr", "vegas", "vivace"} {
		b.Run(cca, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := core.RunBulk(core.BulkConfig{
					Seed: benchSeed, Duration: bulkDur, CC: cca,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Mbps, "Mbps")
			}
		})
	}
}

// BenchmarkFig1b regenerates Figure 1b: BBR's per-ack RTT series under
// DChannel steering. The reported metrics summarize the series' spread
// (the bimodality is the figure's point).
func BenchmarkFig1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.Fig1b(benchSeed, bulkDur, nil)
		if err != nil {
			b.Fatal(err)
		}
		var min, max float64
		for _, p := range r.RTT.Points() {
			if min == 0 || p.Value < min {
				min = p.Value
			}
			if p.Value > max {
				max = p.Value
			}
		}
		b.ReportMetric(min, "rtt_min_ms")
		b.ReportMetric(max, "rtt_max_ms")
		b.ReportMetric(r.Mbps, "Mbps")
	}
}

// BenchmarkFig2 regenerates Figure 2: decoded-frame latency and SSIM
// per steering policy over the two driving traces.
func BenchmarkFig2(b *testing.B) {
	for _, tr := range []string{"lowband-driving", "mmwave-driving"} {
		for _, policy := range []string{core.PolicyEMBBOnly, core.PolicyDChannel, core.PolicyPriority} {
			b.Run(tr+"/"+policy, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r, err := core.RunVideo(core.VideoConfig{
						Seed: benchSeed, Duration: videoDur, Trace: tr, Policy: policy,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(r.Latency.Percentile(95), "p95_ms")
					b.ReportMetric(r.SSIM.Mean(), "ssim")
					b.ReportMetric(float64(r.Frozen), "frozen")
				}
			})
		}
	}
}

// BenchmarkTable1 regenerates Table 1: mean web PLT per policy over
// the stationary and driving traces, 30 pages x 5 loads, background
// flows running throughout.
func BenchmarkTable1(b *testing.B) {
	for _, tr := range []string{"lowband-stationary", "lowband-driving"} {
		for _, policy := range []string{core.PolicyEMBBOnly, core.PolicyDChannel, core.PolicyDChannelPriority} {
			b.Run(tr+"/"+policy, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r, err := core.RunWeb(core.WebConfig{
						Seed: benchSeed, Trace: tr, Policy: policy, Pages: 30, Loads: 5,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(r.PLT.Mean(), "plt_ms")
				}
			})
		}
	}
}

// BenchmarkAblationHVCAwareCC regenerates the §3.2 ablation: each
// delay-based CCA with the channel-aware RTT filter.
func BenchmarkAblationHVCAwareCC(b *testing.B) {
	for _, cca := range []string{"hvc-bbr", "hvc-vegas", "hvc-vivace"} {
		b.Run(cca, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := core.RunBulk(core.BulkConfig{
					Seed: benchSeed, Duration: bulkDur, CC: cca,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Mbps, "Mbps")
			}
		})
	}
}

// BenchmarkAblationMLO regenerates the Wi-Fi MLO redundancy ablation
// (§2.2/§3.1): message delivery rate with and without replication.
func BenchmarkAblationMLO(b *testing.B) {
	for _, mode := range []struct {
		name      string
		redundant bool
	}{{"wifi5-only", false}, {"redundant", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := core.RunMLO(benchSeed, 2000, 1200, 10*time.Millisecond, mode.redundant)
				b.ReportMetric(100*r.DeliveryRate, "delivery_pct")
				b.ReportMetric(r.Latency.Percentile(99), "p99_ms")
			}
		})
	}
}

// BenchmarkAblationCost regenerates the latency-vs-cost ablation
// (§3.1): request latency against the budget on a priced cISP path.
func BenchmarkAblationCost(b *testing.B) {
	for _, budget := range []float64{0, 50_000, 5_000_000} {
		name := "fiber-only"
		if budget > 0 {
			name = byteRate(budget)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := core.RunCost(benchSeed, 500, 20*time.Millisecond, budget)
				b.ReportMetric(r.Latency.Mean(), "mean_ms")
				b.ReportMetric(r.Dollars, "dollars")
			}
		})
	}
}

func byteRate(v float64) string {
	switch {
	case v >= 1e6:
		return "budget-" + itoa(int(v/1e6)) + "MBps"
	case v >= 1e3:
		return "budget-" + itoa(int(v/1e3)) + "kBps"
	default:
		return "budget-" + itoa(int(v)) + "Bps"
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationMultipath regenerates the MPTCP-baseline comparison
// (§1/§3.1): bulk goodput and probe latency per bulk mode.
func BenchmarkAblationMultipath(b *testing.B) {
	for _, mode := range []string{"multipath", "dchannel", "priority"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := core.RunMultipath(benchSeed, 30*time.Second, mode)
				b.ReportMetric(r.BulkMbps, "bulk_Mbps")
				b.ReportMetric(r.Probe.Percentile(50), "probe_p50_ms")
			}
		})
	}
}

// BenchmarkAblationBeta regenerates the DChannel β design-choice sweep
// on the video workload.
func BenchmarkAblationBeta(b *testing.B) {
	for _, beta := range []float64{0.5, 1, 4} {
		b.Run("beta-"+itoa(int(beta*10))+"e-1", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := core.RunBetaSweep(benchSeed, 30*time.Second, []float64{beta})[0]
				b.ReportMetric(p.P95Latency, "p95_ms")
				b.ReportMetric(100*p.URLLCShare, "urllc_pct")
			}
		})
	}
}

// BenchmarkAblationTail regenerates the §3.2 tail-acceleration
// ablation.
func BenchmarkAblationTail(b *testing.B) {
	for _, mode := range []struct {
		name  string
		boost bool
	}{{"embb-only", false}, {"embb+tail", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := core.RunTailBoost(benchSeed, 500, 60_000, 50*time.Millisecond, mode.boost)
				b.ReportMetric(r.Latency.Mean(), "mean_ms")
			}
		})
	}
}

// BenchmarkAblationHAS regenerates the adaptive-streaming comparison:
// startup delay and rebuffering per policy.
func BenchmarkAblationHAS(b *testing.B) {
	for _, policy := range []string{core.PolicyEMBBOnly, core.PolicyObjectMap, core.PolicyDChannel} {
		b.Run(policy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := core.RunABR(core.ABRConfig{
					Seed: benchSeed, Media: 60 * time.Second,
					Trace: "mmwave-driving", Policy: policy,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.StartupDelay.Milliseconds()), "startup_ms")
				b.ReportMetric(float64(r.RebufferTime.Milliseconds()), "rebuffer_ms")
			}
		})
	}
}

// BenchmarkAblationTSN regenerates the §2.2 wireless-TSN comparison:
// control-loop deadline miss rate on contended Wi-Fi.
func BenchmarkAblationTSN(b *testing.B) {
	for _, mode := range []struct {
		name string
		tsn  bool
	}{{"best-effort", false}, {"tsn", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := core.RunTSN(benchSeed, 10*time.Second, mode.tsn)
				b.ReportMetric(100*r.MissRate, "miss_pct")
				b.ReportMetric(r.P99Latency, "p99_ms")
			}
		})
	}
}

// BenchmarkSweep measures the sweep engine end-to-end on a video grid
// (2 policies × 2 traces × 3 seeds = 12 jobs), cold vs. cached, at 1
// and 4 workers. The cached variants bound the engine's fixed
// overhead; on a multi-core machine the worker scaling shows up in the
// cold numbers.
func BenchmarkSweep(b *testing.B) {
	spec, err := sweep.ParseSpec(
		"exp=video policy=embb-only,dchannel trace=lowband-driving,mmwave-driving seeds=1..3 dur=5s")
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("cold/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sweep.Run(spec, sweep.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("cached/workers=%d", workers), func(b *testing.B) {
			dir := b.TempDir()
			if _, err := sweep.Run(spec, sweep.Options{Workers: workers, CacheDir: dir}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sweep.Run(spec, sweep.Options{Workers: workers, CacheDir: dir}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
