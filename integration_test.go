package hvc_test

// Integration tests over the public experiment surface: invariants
// that cut across the simulator, transport, steering, and application
// layers. These run the same code paths as cmd/hvcbench at reduced
// scale.

import (
	"testing"
	"time"

	"hvc/internal/core"
)

func TestEMBBOnlyNeverTouchesURLLC(t *testing.T) {
	r, err := core.RunBulk(core.BulkConfig{
		Seed: 1, Duration: 5 * time.Second, CC: "cubic", Policy: core.PolicyEMBBOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ChannelShare["urllc"] != 0 {
		t.Fatalf("embb-only steered %d packets to urllc", r.ChannelShare["urllc"])
	}
	if r.ChannelShare["embb"] == 0 {
		t.Fatal("no traffic at all")
	}
}

func TestDChannelUsesBothChannels(t *testing.T) {
	r, err := core.RunBulk(core.BulkConfig{
		Seed: 1, Duration: 5 * time.Second, CC: "cubic", Policy: core.PolicyDChannel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.ChannelShare["urllc"] == 0 || r.ChannelShare["embb"] == 0 {
		t.Fatalf("dchannel share %v: both channels should carry traffic", r.ChannelShare)
	}
	// eMBB must carry the bulk: URLLC is 30x narrower.
	if r.ChannelShare["urllc"] > r.ChannelShare["embb"] {
		t.Fatalf("urllc carried more packets than embb: %v", r.ChannelShare)
	}
}

func TestSeedsActuallyChangeTraceDrivenResults(t *testing.T) {
	a, err := core.RunVideo(core.VideoConfig{
		Seed: 1, Duration: 15 * time.Second, Trace: "lowband-driving", Policy: core.PolicyEMBBOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.RunVideo(core.VideoConfig{
		Seed: 2, Duration: 15 * time.Second, Trace: "lowband-driving", Policy: core.PolicyEMBBOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency.Mean() == b.Latency.Mean() {
		t.Fatal("different seeds produced identical latency distributions")
	}
}

func TestAllRunnersDeterministic(t *testing.T) {
	type result struct {
		name string
		run  func() float64
	}
	runs := []result{
		{"bulk", func() float64 {
			r, err := core.RunBulk(core.BulkConfig{Seed: 3, Duration: 3 * time.Second, CC: "bbr"})
			if err != nil {
				t.Fatal(err)
			}
			return r.Mbps
		}},
		{"video", func() float64 {
			r, err := core.RunVideo(core.VideoConfig{Seed: 3, Duration: 5 * time.Second,
				Trace: "mmwave-driving", Policy: core.PolicyPriority})
			if err != nil {
				t.Fatal(err)
			}
			return r.Latency.Mean()
		}},
		{"web", func() float64 {
			r, err := core.RunWeb(core.WebConfig{Seed: 3, Trace: "lowband-stationary",
				Policy: core.PolicyDChannel, Pages: 2, Loads: 1})
			if err != nil {
				t.Fatal(err)
			}
			return r.PLT.Mean()
		}},
		{"abr", func() float64 {
			r, err := core.RunABR(core.ABRConfig{Seed: 3, Media: 10 * time.Second,
				Trace: "lowband-driving", Policy: core.PolicyDChannel})
			if err != nil {
				t.Fatal(err)
			}
			return float64(r.StartupDelay)
		}},
		{"game", func() float64 {
			r, err := core.RunGame(core.GameConfig{Seed: 3, Duration: 3 * time.Second,
				Trace: "lowband-driving", Policy: core.PolicyPriority})
			if err != nil {
				t.Fatal(err)
			}
			return r.InputToDisplay.Mean()
		}},
		{"mlo", func() float64 {
			return core.RunMLO(3, 300, 1200, 10*time.Millisecond, true).DeliveryRate
		}},
		{"cost", func() float64 {
			r := core.RunCost(3, 100, 20*time.Millisecond, 50_000)
			return r.Latency.Mean()
		}},
		{"multipath", func() float64 {
			return core.RunMultipath(3, 5*time.Second, "multipath").BulkMbps
		}},
		{"tsn", func() float64 {
			return core.RunTSN(3, 3*time.Second, true).MissRate
		}},
		{"tail", func() float64 {
			r := core.RunTailBoost(3, 50, 60_000, 50*time.Millisecond, true)
			return r.Latency.Mean()
		}},
	}
	for _, r := range runs {
		r := r
		t.Run(r.name, func(t *testing.T) {
			if a, b := r.run(), r.run(); a != b {
				t.Fatalf("%s not deterministic: %v vs %v", r.name, a, b)
			}
		})
	}
}

func TestEveryPolicyRunsEveryCompatibleWorkload(t *testing.T) {
	policies := []string{
		core.PolicyEMBBOnly, core.PolicyDChannel,
		core.PolicyPriority, core.PolicyDChannelPriority, core.PolicyObjectMap,
	}
	for _, p := range policies {
		p := p
		t.Run("video/"+p, func(t *testing.T) {
			r, err := core.RunVideo(core.VideoConfig{
				Seed: 4, Duration: 5 * time.Second, Trace: "fixed", Policy: p,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Decoded == 0 {
				t.Fatalf("policy %s decoded nothing", p)
			}
		})
	}
	for _, p := range policies {
		if p == core.PolicyPriority {
			continue // video-style forcing is rejected for web
		}
		p := p
		t.Run("web/"+p, func(t *testing.T) {
			r, err := core.RunWeb(core.WebConfig{
				Seed: 4, Trace: "lowband-stationary", Policy: p,
				Pages: 1, Loads: 1, NoBackground: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.PLT.N() != 1 {
				t.Fatalf("policy %s completed %d loads", p, r.PLT.N())
			}
		})
	}
}

func TestCCMatrixCompletesBulk(t *testing.T) {
	for _, cca := range []string{"cubic", "reno", "bbr", "vegas", "vivace",
		"hvc-cubic", "hvc-bbr", "hvc-vegas", "hvc-vivace"} {
		cca := cca
		t.Run(cca, func(t *testing.T) {
			r, err := core.RunBulk(core.BulkConfig{Seed: 5, Duration: 3 * time.Second, CC: cca})
			if err != nil {
				t.Fatal(err)
			}
			if r.Mbps <= 0 {
				t.Fatalf("%s moved no data", cca)
			}
			if r.RTT.N() == 0 {
				t.Fatalf("%s took no RTT samples", cca)
			}
		})
	}
}
